// Command asyncsynthd serves the synthesis pipeline as a long-running
// HTTP job server (synthesis-as-a-service), standalone or as one node of
// a coordinated fleet.
//
// Usage:
//
//	asyncsynthd [-addr host:port] [-queue-depth N] [-concurrency N]
//	            [-j N] [-job-timeout D] [-drain-timeout D]
//	            [-cache-dir dir] [-cache-max-bytes N] [-no-cache]
//	            [-no-stage] [-no-dedup]
//	            [-self URL] [-peers URL,URL,...] [-cache-peers URL,...]
//	            [-cache-timeout D] [-health-interval D]
//
// API:
//
//	POST   /v1/jobs              submit a design; optional ?level= selects
//	                             the optimization level. The body is
//	                             negotiated on Content-Type: JSON (or no
//	                             header) is an interchange CDFG document
//	                             (asyncsynth export emits one); text/x-adl
//	                             (also text/adl, text/plain) is ADL
//	                             behavioral source compiled on submission
//	                             (asyncsynth compile checks one locally)
//	GET    /v1/jobs/{id}         poll job state (result embedded when done;
//	                             "stage" names the latest pipeline stage
//	                             while running)
//	PATCH  /v1/jobs/{id}         apply a CDFG delta document to the job's
//	                             input design and run the patched design
//	                             as a new job; unchanged pipeline stages
//	                             replay from the incremental stage cache
//	                             (asyncsynth patch builds delta documents)
//	GET    /v1/jobs/{id}/result  the synthesis document, byte-for-byte
//	GET    /v1/jobs/{id}/events  job progress: SSE stream of lifecycle and
//	                             pipeline-span events (?poll=1 long-polls
//	                             JSON batches instead)
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/cache/{key}       one solved minimization record or cached
//	                             stage payload, for peer cache fills
//	                             (fleet mode)
//	GET    /healthz              liveness (503 while draining)
//	GET    /metrics              Prometheus text exposition of the obs
//	                             registry (stage timings, memo hit rates,
//	                             queue/pool/fleet gauges)
//
// Submissions beyond -queue-depth are rejected immediately with 429 —
// backpressure is applied at admission, never by queueing unbounded work.
// All jobs share one hazard-free-minimization memo cache and divide the
// -j worker budget across -concurrency runners. Identical concurrent
// submissions collapse onto one job (request-level dedup; -no-dedup
// restores a run per request). On SIGINT/SIGTERM the daemon stops
// admitting, finishes queued and running jobs (bounded by -drain-timeout,
// then force-cancels), and exits.
//
// # Fleet mode
//
// -peers lists the other nodes' base URLs; every node runs with the same
// set (plus its own, via -self or inferred from the bound listener).
// Submissions are then routed by content hash on a consistent ring so
// identical documents meet at one owner, polls for a foreign job ID are
// proxied to its node, and each node's memo cache pulls solved records
// from its peers before recomputing. Peers are health-checked every
// -health-interval; a dead owner degrades submissions to local execution.
//
// The daemon prints "listening on http://ADDR" on stdout once the socket
// is bound; with -addr 127.0.0.1:0 the kernel picks a free port and
// scripts parse it from that line (see scripts/verify.sh).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/logic"
	"repro/internal/memo"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/stage"
	"repro/internal/synth"
)

var (
	addr         = flag.String("addr", "127.0.0.1:8337", "listen address (use :0 for a kernel-assigned port)")
	queueDepth   = flag.Int("queue-depth", 16, "max jobs waiting for a runner; submissions beyond it get 429")
	concurrency  = flag.Int("concurrency", 2, "jobs running simultaneously")
	jWorkers     = flag.Int("j", 0, "total pipeline worker budget shared by the runners (0 = all CPUs)")
	jobTimeout   = flag.Duration("job-timeout", 0, "per-job deadline (0 = none)")
	drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "how long shutdown waits for in-flight jobs before force-cancelling")
	cacheDir     = flag.String("cache-dir", "", "persist minimization results and stage payloads under this directory")
	cacheMax     = flag.Int64("cache-max-bytes", 0, "cap each on-disk cache at this many bytes, evicting oldest entries (0 = unbounded)")
	noCache      = flag.Bool("no-cache", false, "disable the shared minimization memo cache")
	noStage      = flag.Bool("no-stage", false, "disable the incremental stage engine (every job recomputes all pipeline stages)")
	noDedup      = flag.Bool("no-dedup", false, "disable request-level dedup of identical submissions")
	solverName   = flag.String("solver", "bb", "covering backend for exact hazard-free minimization: bb, pb, portfolio or greedy")

	selfURL        = flag.String("self", "", "advertised base URL of this node (default http://<bound addr>)")
	peerList       = flag.String("peers", "", "comma-separated base URLs of the other fleet nodes")
	cachePeerList  = flag.String("cache-peers", "", "additional cache-only peer URLs consulted for remote fills but never given jobs")
	cacheTimeout   = flag.Duration("cache-timeout", memo.DefaultRemoteTimeout, "deadline for one remote cache lookup across the peers")
	healthInterval = flag.Duration("health-interval", time.Second, "interval between peer health probes")
)

func main() { os.Exit(run()) }

func run() int {
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "asyncsynthd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		return 2
	}
	if *jWorkers < 0 || *queueDepth < 0 || *concurrency < 0 {
		fmt.Fprintln(os.Stderr, "asyncsynthd: -j, -queue-depth and -concurrency must be >= 0")
		flag.Usage()
		return 2
	}
	splitURLs := func(list string) []string {
		var out []string
		for _, u := range strings.Split(list, ",") {
			if u = strings.TrimSpace(u); u != "" {
				out = append(out, u)
			}
		}
		return out
	}
	peerURLs := splitURLs(*peerList)
	cachePeerURLs := splitURLs(*cachePeerList)

	// The metrics registry is always on — /metrics is part of the API —
	// and so is the span tracer, which feeds the per-job event streams.
	obs.SetMetrics(obs.NewMetrics())
	tracer := obs.New(0)
	tracer.Enable()
	obs.SetTracer(tracer)

	solver, err := logic.ParseSolver(*solverName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
		flag.Usage()
		return 2
	}

	// Bind before building the fleet identity: with -addr :0 the node's
	// ID and inferred -self must name the port the kernel actually chose.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
		return 1
	}
	self := *selfURL
	if self == "" {
		self = "http://" + ln.Addr().String()
	}

	var peers *fleet.Peers
	if len(peerURLs) > 0 {
		peers = fleet.NewPeers(peerURLs, fleet.PeerOptions{Interval: *healthInterval})
		peers.Start()
		defer peers.Close()
	}

	var minimizer synth.Minimizer
	var cache *memo.Cache
	fillPeers := append(append([]string{}, peerURLs...), cachePeerURLs...)
	if !*noCache {
		cache, err = memo.NewSolver(*cacheDir, solver)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
			return 1
		}
		cache.SetMaxBytes(*cacheMax)
		if len(fillPeers) > 0 {
			cache.SetRemote(fleet.NewCacheClient(fillPeers, peers, fleet.CacheClientOptions{}), *cacheTimeout)
		}
		minimizer = cache
	}

	// The stage engine persists its payloads next to the minimization
	// records (a "stage" subdirectory) when -cache-dir is set, and pulls
	// missing stage blobs from the same peers over the shared
	// /v1/cache/{key} endpoint.
	var store *memo.Store
	var engine *stage.Engine
	if !*noStage {
		stageDir := ""
		if *cacheDir != "" {
			stageDir = filepath.Join(*cacheDir, "stage")
		}
		store, err = memo.NewStore(stageDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
			return 1
		}
		store.SetMaxBytes(*cacheMax)
		if len(fillPeers) > 0 {
			store.SetRemote(fleet.NewCacheClient(fillPeers, peers, fleet.CacheClientOptions{}), *cacheTimeout)
		}
		engine = stage.New(store)
	}

	cfg := service.Config{
		QueueDepth:  *queueDepth,
		Concurrency: *concurrency,
		Parallelism: *jWorkers,
		JobTimeout:  *jobTimeout,
		Minimizer:   minimizer,
		Engine:      engine,
		Solver:      solver,
		Dedup:       !*noDedup,
	}
	if len(peerURLs) > 0 {
		// Fleet job IDs carry the node so peers can route polls.
		cfg.NodeID = ln.Addr().String()
	}
	mgr := service.New(cfg)
	handler := mgr.FleetHandler(service.FleetConfig{
		Self:  self,
		Nodes: append([]string{self}, peerURLs...),
		Peers: peers,
		Cache: cache,
		Blobs: store,
	})

	fmt.Printf("listening on http://%s\n", ln.Addr())

	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "asyncsynthd:", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: refuse new jobs, finish admitted ones, then close
	// the listener. Polls keep working while jobs drain.
	fmt.Println("draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := mgr.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynthd: drain:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "asyncsynthd: shutdown:", err)
		return 1
	}
	fmt.Println("drained")
	return 0
}
