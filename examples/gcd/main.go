// Conditional control: a GCD engine with IF blocks inside the loop, split
// across a subtractor unit and a comparator unit. Demonstrates that the
// transformation flow and the extracted burst-mode controllers handle
// data-dependent branching, not just the straight-line DIFFEQ loop body.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gcd"
)

func main() {
	pairs := [][2]float64{{12, 18}, {123, 45}, {1071, 462}}
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		want := gcd.Reference(a, b)

		unopt, err := core.Run(gcd.Build(a, b), core.Options{Level: core.Unoptimized})
		if err != nil {
			log.Fatal(err)
		}
		s, err := core.Run(gcd.Build(a, b), core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Verify(map[string]float64{"a": want}, 5); err != nil {
			log.Fatalf("gcd(%v,%v): %v", a, b, err)
		}
		res, err := s.Simulate(0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("gcd(%v, %v) = %v  (channels %d→%d, %d events)\n",
			a, b, res.Regs["a"], unopt.Channels(), s.Channels(), res.Events)
	}

	// Show the conditional controllers.
	s, err := core.Run(gcd.Build(12, 18), core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized controllers:")
	for _, fu := range gcd.FUs {
		m := s.Machines[fu]
		fmt.Printf("  %s: %d states, %d transitions, %d sampled conditions\n",
			fu, m.NumStates(), m.NumTransitions(), len(m.Levels))
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngate level:")
	for _, fu := range gcd.FUs {
		fmt.Printf("  %s\n", results[fu].Summary())
	}
}
