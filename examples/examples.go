// Package examples holds the runnable example programs (subdirectories)
// and the stock .adl benchmark sources compiled by the ADL frontend. The
// .adl files are embedded so the benchmark registry (internal/bench) and
// the verification suite can compile the canonical sources without
// depending on the working directory.
package examples

import "embed"

// ADL holds every .adl design source shipped with the repo. These are
// the canonical texts: internal/bench compiles them into the stock EWF
// and AR benchmarks, and scripts/verify.sh asserts each one compiles and
// round-trips through the interchange codec byte-identically.
//
//go:embed *.adl
var ADL embed.FS
