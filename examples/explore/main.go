// Design-space exploration: the paper positions its transformations as the
// moves of a design-space search ("much like the transforms of SIS"). This
// example sweeps transform subsets over the DIFFEQ benchmark and reports
// the channel-count / controller-size / performance trade-offs, including
// the Pareto front.
package main

import (
	"fmt"

	"repro/internal/diffeq"
	"repro/internal/explore"
)

func main() {
	g := diffeq.Build(diffeq.DefaultParams())
	scores := explore.SweepParallel(g, explore.AllVariants(), 0) // 0 = all CPUs; identical to Sweep
	fmt.Println("DIFFEQ design-space sweep (one row per transform subset):")
	fmt.Print(explore.Format(scores))

	if best, ok := explore.Best(scores, func(s explore.Score) float64 { return s.Makespan }); ok {
		fmt.Printf("\nfastest: %-12s makespan %.1f (channels %d)\n",
			best.Variant.Name, best.Makespan, best.Channels)
	}
	if best, ok := explore.Best(scores, func(s explore.Score) float64 { return float64(s.Channels) }); ok {
		fmt.Printf("fewest channels: %-12s %d channels (makespan %.1f)\n",
			best.Variant.Name, best.Channels, best.Makespan)
	}
	if best, ok := explore.Best(scores, func(s explore.Score) float64 { return float64(s.States) }); ok {
		fmt.Printf("smallest control: %-12s %d states\n", best.Variant.Name, best.States)
	}

	fmt.Println("\nPareto front (channels × states × makespan):")
	for _, sc := range explore.Pareto(scores) {
		fmt.Printf("  %-12s channels=%d states=%d makespan=%.1f\n",
			sc.Variant.Name, sc.Channels, sc.States, sc.Makespan)
	}
	fmt.Println("\nReading: GT5 buys wires at a concurrency cost (the paper's §3.5")
	fmt.Println("concurrency-reduction caveat); GT1 buys speed; LT buys controller area.")
}
