// Quickstart: build a small scheduled program, run the full synthesis flow
// (global transforms → controller extraction → local transforms), and
// verify the resulting distributed controllers by simulation.
package main

import (
	"fmt"
	"log"

	"repro/internal/cdfg"
	"repro/internal/core"
)

func main() {
	// A two-unit accumulator: MUL squares x, ALU accumulates into s, ten
	// times. Statements appear in schedule order; constraint arcs (control,
	// per-unit scheduling, data dependencies, register allocation) are
	// derived automatically.
	p := cdfg.NewProgram("accum", "ALU", "MUL")
	p.Const("one", "ten")
	p.InitAll(map[string]float64{
		"x": 0, "s": 0, "i": 0, "one": 1, "ten": 10, "run": 1,
	})
	p.Loop("ALU", "run")
	p.Op("MUL", "sq", cdfg.OpMul, "x", "x")
	p.Op("ALU", "x", cdfg.OpAdd, "x", "one")
	p.Op("ALU", "s", cdfg.OpAdd, "s", "sq")
	p.Op("ALU", "i", cdfg.OpAdd, "i", "one")
	p.Op("ALU", "run", cdfg.OpLT, "i", "ten")
	p.EndLoop()

	g, err := p.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CDFG: %d nodes, %d arcs, %d inter-unit channels (unoptimized)\n",
		len(g.Nodes()), len(g.Arcs()), len(g.InterFUArcs(false)))

	// Run the paper's full pipeline: GT1–GT5, extraction, LT1–LT5.
	s, err := core.Run(g, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after GT1–GT5: %d channels (%d multi-way)\n", s.Channels(), s.MultiwayChannels())
	for fu, m := range s.Machines {
		fmt.Printf("controller %s: %d states, %d transitions\n", fu, m.NumStates(), m.NumTransitions())
	}

	// The distributed controllers must compute sum of squares 0²+…+9² = 285.
	want := map[string]float64{"s": 285}
	if err := s.Verify(want, 5); err != nil {
		log.Fatal(err)
	}
	res, err := s.Simulate(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated: s = %v (expected 285), %d events\n", res.Regs["s"], res.Events)

	// Timing assumptions the optimizer took (relative timing, LT4, LT1…).
	fmt.Printf("timing assumptions taken: %d\n", len(s.Assumptions()))
}
