// The paper's case study end to end: the differential equation solver
// benchmark is taken through all three experiment levels (unoptimized,
// optimized-GT, optimized-GT-and-LT), regenerating the channel counts of
// Figure 5, the state-machine comparison of Figure 12 and the gate-level
// comparison of Figure 13, and verifying each implementation by simulation
// against the sequential reference.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/transform"
)

func main() {
	p := diffeq.DefaultParams()
	ref := diffeq.Reference(p)
	want := map[string]float64{"X": ref["X"], "Y": ref["Y"], "U": ref["U"]}
	fmt.Printf("DIFFEQ: x0=%v y0=%v u0=%v dx=%v a=%v → %d iterations\n",
		p.X0, p.Y0, p.U0, p.DX, p.A, diffeq.Iterations(p))
	fmt.Printf("reference: X=%v Y=%v U=%v\n\n", ref["X"], ref["Y"], ref["U"])

	// Figure 5: channel elimination.
	g := diffeq.Build(p)
	opts := transform.DefaultOptions()
	opts.SkipGT5 = true
	plan, _, err := transform.OptimizeGT(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("channels after GT1–GT4 (Figure 5, left): %d\n", plan.Count())
	plan.Eliminate()
	fmt.Printf("channels after GT5 (Figure 5, right): %d (%d multi-way)\n\n",
		plan.Count(), plan.MultiwayCount())

	// Figure 12: the three experiment rows, each verified by simulation.
	var rows []core.Row
	var final *core.Synthesis
	for _, level := range []core.Level{core.Unoptimized, core.OptimizedGT, core.OptimizedGTLT} {
		opt := core.DefaultOptions()
		opt.Level = level
		s, err := core.Run(diffeq.Build(p), opt)
		if err != nil {
			log.Fatal(err)
		}
		if err := s.Verify(want, 5); err != nil {
			log.Fatalf("%s: %v", level, err)
		}
		rows = append(rows, s.Fig12Row())
		final = s
	}
	fmt.Println("Figure 12 (state machine comparison), this implementation:")
	fmt.Print(core.FormatFig12(diffeq.FUs, rows))
	fmt.Println("\npaper's published rows:")
	var paper []core.Row
	for _, r := range diffeq.PaperFig12 {
		paper = append(paper, core.Row{Name: r.Name, Channels: r.Channels, States: r.States, Transitions: r.Transitions})
	}
	fmt.Print(core.FormatFig12(diffeq.FUs, paper))

	// Figure 13: gate-level synthesis of the fully optimized controllers.
	results, err := final.SynthesizeLogic()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFigure 13 (gate level), this implementation:")
	fmt.Print(core.FormatFig13(diffeq.FUs, results))
	yp, yl := diffeq.GateTotals(diffeq.PaperFig13Yun)
	op, ol := diffeq.GateTotals(diffeq.PaperFig13Ours)
	fmt.Printf("\npublished: Yun (manual) total %d/%d, paper's automated flow total %d/%d\n", yp, yl, op, ol)

	fmt.Printf("\nall three levels verified against the reference over 5 random delay assignments\n")
	fmt.Printf("timing assumptions taken by the full flow: %d\n", len(final.Assumptions()))
}
