// Command capturecover extracts the hazard-free covering workload of a
// benchmark: it runs the full pipeline with an instrumented minimizer,
// rebuilds the unate covering problem of every exact minimization the
// encoding ladder dispatched, times each one under the configured solver
// backends, and reports the worst instance. With -fixture it writes that
// instance as a JSON covering matrix (the format loaded by
// internal/logic's worst-case tests and BenchmarkCoveringWorstCase).
//
// Usage:
//
//	go run ./scripts/capturecover [-bench gcd] [-solver bb,pb,portfolio]
//	                              [-fixture out.json] [-spec-fixture out.json]
//	                              [-top N]
//
// Besides the covering matrices, the tool times the complete
// hfmin.Minimize call (analysis + dhf-prime generation + covering) of
// every captured spec and reports the worst one — the "per-output hfmin
// worst case" tracked in EXPERIMENTS.md — and can persist that spec with
// -spec-fixture for BenchmarkCoveringWorstCase.
//
// The tool exists to keep BENCH_covering.json honest: every covering
// solver change re-runs it to record the per-benchmark worst-output solve
// time trajectory (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/fir"
	"repro/internal/gcd"
	"repro/internal/hfmin"
	"repro/internal/logic"
)

var (
	benchName = flag.String("bench", "gcd", "benchmark to capture: diffeq, gcd or fir")
	solvers   = flag.String("solver", "bb", "comma-separated covering backends to time: bb, pb, portfolio, greedy")
	fixture   = flag.String("fixture", "", "write the worst instance as a JSON covering matrix to this file")
	specFix   = flag.String("spec-fixture", "", "write the spec with the slowest full minimization as JSON to this file")
	top       = flag.Int("top", 5, "how many of the slowest instances to report")
	reps      = flag.Int("reps", 3, "timing repetitions per instance (minimum is reported)")
)

// specRecorder captures every spec routed through the synthesis
// pipeline's exact-minimization seam while still solving it.
type specRecorder struct {
	mu    sync.Mutex
	specs []hfmin.Spec
}

func (r *specRecorder) Minimize(spec hfmin.Spec) (hfmin.Result, error) {
	r.mu.Lock()
	r.specs = append(r.specs, spec)
	r.mu.Unlock()
	return hfmin.Minimize(spec)
}

// fixtureFile is the serialized covering matrix; internal/logic's tests
// decode the same shape.
type fixtureFile struct {
	Comment string  `json:"comment"`
	NumCols int     `json:"num_cols"`
	Rows    [][]int `json:"rows"`
	Cost    []int   `json:"cost"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "capturecover:", err)
		os.Exit(1)
	}
}

func buildBench(name string) (*cdfg.Graph, error) {
	switch name {
	case "diffeq":
		return diffeq.Build(diffeq.DefaultParams()), nil
	case "gcd":
		return gcd.Build(123, 45), nil
	case "fir":
		return fir.Build(fir.DefaultParams()), nil
	}
	return nil, fmt.Errorf("unknown benchmark %q", name)
}

func run() error {
	g, err := buildBench(*benchName)
	if err != nil {
		return err
	}
	rec := &specRecorder{}
	opt := core.DefaultOptions()
	opt.Parallelism = 1
	opt.Minimizer = rec
	s, err := core.Run(g, opt)
	if err != nil {
		return err
	}
	if _, err := s.SynthesizeLogic(); err != nil {
		return err
	}

	// Deduplicate by canonical covering content (the ladder retries specs).
	type inst struct {
		prob *logic.CoveringProblem
		key  string
	}
	seen := map[string]bool{}
	var insts []inst
	for _, spec := range rec.specs {
		_, prob, err := hfmin.Covering(spec)
		if err != nil || prob == nil || len(prob.Rows) == 0 {
			continue // infeasible or trivial: no covering search happened
		}
		key := probKey(prob)
		if seen[key] {
			continue
		}
		seen[key] = true
		insts = append(insts, inst{prob: prob, key: key})
	}
	fmt.Printf("%s: %d minimizations, %d unique covering instances\n",
		*benchName, len(rec.specs), len(insts))

	// Time the complete per-output minimization (analysis, dhf-prime
	// generation, covering) — the number EXPERIMENTS.md tracks.
	worstSpec, worstSpecTime, totalMinimize := -1, time.Duration(0), time.Duration(0)
	for i, spec := range rec.specs {
		best := time.Duration(-1)
		for r := 0; r < *reps; r++ {
			start := time.Now()
			if _, err := hfmin.Minimize(spec); err != nil && !errors.Is(err, hfmin.ErrInfeasible) {
				return err
			}
			if d := time.Since(start); best < 0 || d < best {
				best = d
			}
		}
		totalMinimize += best
		if best > worstSpecTime {
			worstSpec, worstSpecTime = i, best
		}
	}
	fmt.Printf("worst single hfmin.Minimize: %v (spec #%d); total across %d specs: %v\n",
		worstSpecTime, worstSpec, len(rec.specs), totalMinimize)
	if *specFix != "" && worstSpec >= 0 {
		data, err := hfmin.MarshalSpec(rec.specs[worstSpec],
			fmt.Sprintf("spec with the slowest exact minimization of the %s benchmark (captured by scripts/capturecover)", *benchName))
		if err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(*specFix), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(*specFix, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("spec fixture written to %s\n", *specFix)
	}

	backends := strings.Split(*solvers, ",")
	type timed struct {
		idx   int
		rows  int
		cols  int
		times map[string]time.Duration
		exact map[string]bool
		cost  int
	}
	results := make([]timed, 0, len(insts))
	for i, in := range insts {
		tr := timed{idx: i, rows: len(in.prob.Rows), cols: in.prob.NumCols,
			times: map[string]time.Duration{}, exact: map[string]bool{}}
		for _, b := range backends {
			b = strings.TrimSpace(b)
			solver, err := logic.ParseSolver(b)
			if err != nil {
				return err
			}
			best := time.Duration(-1)
			var exact bool
			var cols []int
			for r := 0; r < *reps; r++ {
				start := time.Now()
				cols, exact = in.prob.SolveWith(solver)
				if d := time.Since(start); best < 0 || d < best {
					best = d
				}
			}
			tr.times[b] = best
			tr.exact[b] = exact
			if cols != nil {
				tr.cost = coverCost(in.prob, cols)
			}
		}
		results = append(results, tr)
	}
	primary := strings.TrimSpace(backends[0])
	sort.Slice(results, func(i, j int) bool { return results[i].times[primary] > results[j].times[primary] })

	n := *top
	if n > len(results) {
		n = len(results)
	}
	fmt.Printf("slowest %d instances by %s time:\n", n, primary)
	for _, tr := range results[:n] {
		fmt.Printf("  #%-3d %3d rows × %4d cols  cost %5d", tr.idx, tr.rows, tr.cols, tr.cost)
		for _, b := range backends {
			b = strings.TrimSpace(b)
			fmt.Printf("  %s=%v(exact=%v)", b, tr.times[b], tr.exact[b])
		}
		fmt.Println()
	}
	if len(results) > 0 {
		var total time.Duration
		for _, tr := range results {
			total += tr.times[primary]
		}
		fmt.Printf("total %s covering time across %d instances: %v\n", primary, len(results), total)
	}

	if *fixture != "" && len(results) > 0 {
		worst := insts[results[0].idx].prob
		f := fixtureFile{
			Comment: fmt.Sprintf("worst covering instance of the %s benchmark (captured by scripts/capturecover)", *benchName),
			NumCols: worst.NumCols,
			Rows:    worst.Rows,
			Cost:    worst.Cost,
		}
		data, err := json.MarshalIndent(f, "", " ")
		if err != nil {
			return err
		}
		if err := os.MkdirAll(filepath.Dir(*fixture), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(*fixture, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("fixture written to %s\n", *fixture)
	}
	return nil
}

// probKey is a cheap content key for deduplicating covering instances.
func probKey(p *logic.CoveringProblem) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d;", p.NumCols)
	for _, r := range p.Rows {
		fmt.Fprintf(&b, "%v", r)
	}
	fmt.Fprintf(&b, ";%v", p.Cost)
	return b.String()
}

func coverCost(p *logic.CoveringProblem, cols []int) int {
	t := 0
	for _, c := range cols {
		if p.Cost != nil {
			t += p.Cost[c]
		} else {
			t++
		}
	}
	return t
}
