// Command checkdoc enforces the repo's documentation bar. Two checks:
//
//  1. Every package must carry a package-level doc comment (godoc). It
//     walks the module tree, parsing only package clauses and their
//     comments (no type checking, so it is fast and dependency-free).
//  2. The user-facing library packages (internal/frontend, internal/gen,
//     internal/search, internal/stage) must document every exported
//     identifier — these are the packages the manual points new users
//     at, so an undocumented export there is a doc regression, not a
//     style nit.
//
// Run from the repo root, typically via scripts/verify.sh:
//
//	go run ./scripts/checkdoc
//
// Exit status: 0 when every check passes, 1 otherwise.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// strictDirs lists the package directories where every exported
// identifier (and exported struct field) must carry a doc comment.
var strictDirs = []string{
	"internal/frontend",
	"internal/gen",
	"internal/search",
	"internal/stage",
}

func main() {
	missing, err := scan(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdoc:", err)
		os.Exit(1)
	}
	fail := false
	if len(missing) > 0 {
		fail = true
		fmt.Fprintln(os.Stderr, "checkdoc: packages missing a package doc comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
	}
	var undocumented []string
	for _, dir := range strictDirs {
		u, err := scanExported(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkdoc:", err)
			os.Exit(1)
		}
		undocumented = append(undocumented, u...)
	}
	if len(undocumented) > 0 {
		fail = true
		fmt.Fprintln(os.Stderr, "checkdoc: exported identifiers missing doc comments:")
		for _, id := range undocumented {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("checkdoc: all packages documented")
}

// scan returns the directories under root containing a Go package none of
// whose files has a package doc comment. Test-only packages (everything
// in *_test.go files) are exempt: their doc surface is the package under
// test.
func scan(root string) ([]string, error) {
	// dir -> has any non-test Go file / has a package doc comment
	type state struct{ hasGo, hasDoc bool }
	dirs := map[string]*state{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %w", path, perr)
		}
		dir := filepath.Dir(path)
		st := dirs[dir]
		if st == nil {
			st = &state{}
			dirs[dir] = st
		}
		st.hasGo = true
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			st.hasDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var missing []string
	for dir, st := range dirs {
		if st.hasGo && !st.hasDoc {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	return missing, nil
}

// scanExported returns "dir: Name" entries for every exported top-level
// identifier in dir's non-test files that lacks a doc comment. Grouped
// const/var specs count as documented when the group declaration carries
// one; exported fields of exported structs are checked too, since the
// strict packages' types are part of the documented API surface.
func scanExported(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	report := func(name string) { out = append(out, dir+": "+name) }
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv != nil && !exportedRecv(d.Recv) {
					continue // method on an unexported type
				}
				if d.Name.IsExported() && d.Doc == nil {
					report(d.Name.Name)
				}
			case *ast.GenDecl:
				groupDoc := d.Doc != nil
				for _, spec := range d.Specs {
					switch sp := spec.(type) {
					case *ast.TypeSpec:
						if !sp.Name.IsExported() {
							continue
						}
						if sp.Doc == nil && !groupDoc {
							report(sp.Name.Name)
						}
						for _, field := range undocFields(sp) {
							report(sp.Name.Name + "." + field)
						}
					case *ast.ValueSpec:
						for _, n := range sp.Names {
							if n.IsExported() && sp.Doc == nil && sp.Comment == nil && !groupDoc {
								report(n.Name)
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// undocFields lists the exported struct fields of sp that carry neither a
// doc comment nor a trailing line comment.
func undocFields(sp *ast.TypeSpec) []string {
	st, ok := sp.Type.(*ast.StructType)
	if !ok {
		return nil
	}
	var out []string
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.IsExported() && field.Doc == nil && field.Comment == nil {
				out = append(out, n.Name)
			}
		}
	}
	return out
}

// exportedRecv reports whether a method receiver names an exported type.
func exportedRecv(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true // unusual receiver: err on the side of checking
		}
	}
}
