// Command checkdoc enforces the repo's documentation bar: every package
// must carry a package-level doc comment (godoc). It walks the module
// tree, parses only package clauses and their comments (no type checking,
// so it is fast and dependency-free), and fails listing every package
// directory whose files all lack a package comment.
//
// Run from the repo root, typically via scripts/verify.sh:
//
//	go run ./scripts/checkdoc
//
// Exit status: 0 when every package is documented, 1 otherwise.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	missing, err := scan(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "checkdoc:", err)
		os.Exit(1)
	}
	if len(missing) > 0 {
		fmt.Fprintln(os.Stderr, "checkdoc: packages missing a package doc comment:")
		for _, dir := range missing {
			fmt.Fprintf(os.Stderr, "  %s\n", dir)
		}
		os.Exit(1)
	}
	fmt.Println("checkdoc: all packages documented")
}

// scan returns the directories under root containing a Go package none of
// whose files has a package doc comment. Test-only packages (everything
// in *_test.go files) are exempt: their doc surface is the package under
// test.
func scan(root string) ([]string, error) {
	// dir -> has any non-test Go file / has a package doc comment
	type state struct{ hasGo, hasDoc bool }
	dirs := map[string]*state{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, perr := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if perr != nil {
			return fmt.Errorf("%s: %w", path, perr)
		}
		dir := filepath.Dir(path)
		st := dirs[dir]
		if st == nil {
			st = &state{}
			dirs[dir] = st
		}
		st.hasGo = true
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			st.hasDoc = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var missing []string
	for dir, st := range dirs {
		if st.hasGo && !st.hasDoc {
			missing = append(missing, dir)
		}
	}
	sort.Strings(missing)
	return missing, nil
}
