// Command loadgen boots a real asyncsynthd fleet and drives it through
// the sustained-load harness (internal/loadtest), printing the run
// report as JSON.
//
// Usage:
//
//	go run ./scripts/loadgen [-nodes N] [-jobs N] [-clients N]
//	                         [-gen N] [-cancel-every N] [-kill N]
//	                         [-byzantine] [-cross-verify] [-bin path]
//	                         [-o report.json]
//
// The exit status is the verdict: 0 when every job was accounted for and
// every served document matched its direct single-process run, 1
// otherwise. scripts/verify.sh runs a small configuration of this and
// appends the latency percentiles to BENCH_service.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/loadtest"
)

var (
	nodes       = flag.Int("nodes", 3, "fleet size")
	jobs        = flag.Int("jobs", 0, "total submissions (0 = twice the corpus)")
	clients     = flag.Int("clients", 4, "concurrent submitters")
	genSeeds    = flag.Int("gen", 3, "random designs from internal/gen added to the benchmark corpus")
	cancelEvery = flag.Int("cancel-every", 0, "cancel every Nth job right after submission (0 = no storm)")
	killAfter   = flag.Int("kill", 0, "SIGKILL the last node after N completed jobs (0 = no kill)")
	byzantine   = flag.Bool("byzantine", false, "inject corrupt and intermittently-stalling cache peers")
	crossVerify = flag.Bool("cross-verify", true, "re-run every document on a non-owner node afterwards")
	binPath     = flag.String("bin", "", "prebuilt asyncsynthd binary (default: go build a fresh one)")
	outPath     = flag.String("o", "", "write the JSON report here as well as stdout")
)

func main() { os.Exit(run()) }

func run() int {
	flag.Parse()

	bin := *binPath
	if bin == "" {
		dir, err := os.MkdirTemp("", "loadgen-bin-")
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
		defer os.RemoveAll(dir)
		if bin, err = loadtest.BuildDaemon(dir); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
	}

	var cachePeers []string
	if *byzantine {
		for _, mode := range []loadtest.ByzantineMode{loadtest.Slow, loadtest.Corrupt} {
			b, err := loadtest.StartByzantineCache(mode)
			if err != nil {
				fmt.Fprintln(os.Stderr, "loadgen:", err)
				return 1
			}
			defer b.Close()
			cachePeers = append(cachePeers, b.URL)
		}
	}

	fleet, err := loadtest.StartFleet(loadtest.FleetOptions{
		Bin:        bin,
		N:          *nodes,
		CachePeers: cachePeers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	defer fleet.Close()

	docs, err := loadtest.Workload(*genSeeds)
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "loadgen: %d nodes, %d-document corpus\n", *nodes, len(docs))

	rep := loadtest.Run(fleet, docs, loadtest.RunOptions{
		Jobs:        *jobs,
		Clients:     *clients,
		CancelEvery: *cancelEvery,
		KillAfter:   *killAfter,
		KillNode:    *nodes - 1,
		CrossVerify: *crossVerify,
	})

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		return 1
	}
	fmt.Println(string(out))
	if *outPath != "" {
		if err := os.WriteFile(*outPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			return 1
		}
	}
	if rep.Mismatches != 0 || rep.Errors != 0 || rep.Done+rep.Cancelled != rep.Jobs {
		fmt.Fprintln(os.Stderr, "loadgen: FAIL — mismatches or unaccounted jobs (see report)")
		return 1
	}
	fmt.Fprintln(os.Stderr, "loadgen: ok — every served document bit-identical to its direct run")
	return 0
}
