#!/usr/bin/env bash
# Tier-1 verification for this repo, as documented in ROADMAP.md and
# DESIGN.md: build, static checks, documentation bar, and the full test
# suite under the race detector (mandatory because the synthesis engine
# fans out across a worker pool).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== checkdoc (package docs + frontend/gen exported-identifier docs)"
go run ./scripts/checkdoc
echo "== go test -race"
go test -race ./...
echo "== docs: every examples/*.adl compiles and round-trips byte-identically"
go test -race -run 'TestCompileEmbeddedExamples' -count=1 ./internal/frontend
for adl in examples/*.adl; do
	go run ./cmd/asyncsynth compile -check "$adl"
done
echo "== fuzz smoke (seeded generator soundness, 5s)"
go test -run '^Fuzz' -count=1 ./internal/codec ./internal/core ./internal/gen
go test -run '^$' -fuzz '^FuzzGenSoundness$' -fuzztime 5s ./internal/gen
echo "== memo equivalence (cached pipeline bit-identical to uncached)"
go test -race -run 'TestMemoEquivalence' -count=1 .
echo "== cold-cache overhead guard (<5% on the all-miss path)"
go test -run 'TestColdCacheOverheadGuard' -count=1 .
echo "== server smoke test (asyncsynthd on a random port: submit DIFFEQ,"
echo "   poll to completion, served netlists bit-identical to direct run,"
echo "   graceful SIGTERM drain)"
go test -race -run 'TestServerSmoke' -count=1 ./cmd/asyncsynthd
echo "== server cancellation (DELETE frees pool workers without failing"
echo "   the other in-flight jobs; asserted via obs pool gauges)"
go test -race -run 'TestCancelFreesWorkersWithoutFailingOthers|TestHTTPBackpressureAndCancel' -count=1 ./internal/service
echo "== covering solver cross-check (bb/pb/portfolio agree; portfolio"
echo "   bit-identical to sequential B&B, corpus + GCD worst fixture +"
echo "   full pipeline on all three benchmarks)"
go test -race -run 'TestSolverCrossCheck|TestPortfolioDeterministic|TestGCDWorstCaseFixture' -count=1 ./internal/logic
go test -race -run 'TestWorstCaseSpecSolvers' -count=1 ./internal/hfmin
go test -race -run 'TestPortfolioSolverEquivalence' -count=1 .
echo "== gate-level closure (synthesized logic verified on every registry"
echo "   benchmark, including the formerly-failing FIR and AR)"
go test -race -run 'TestGateClosureRegistry' -count=1 ./internal/bench
echo "== rewrite search smoke (DIFFEQ, bounded profile; appending to"
echo "   BENCH_search.json)"
search_out=$(go run ./cmd/asyncsynth search diffeq -waves 1 -budget 16)
echo "$search_out"
{
	printf '{"date":"%s","commit":"%s",' \
		"$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	echo "$search_out" | awk '
		/^  cost / { cost = $2 }
		/^best fixed ablation/ { gsub(/[()]/, ""); abl = $NF }
		END { printf("\"search_cost\":%s,\"ablation_cost\":%s}\n", cost, abl) }'
} >>BENCH_search.json
echo "== covering worst-case benchmarks (appending to BENCH_covering.json)"
bench_out=$(go test -run '^$' -bench 'BenchmarkCoveringWorstCase|BenchmarkMinimizeWorstCase' \
	-benchtime 20x ./internal/logic ./internal/hfmin)
echo "$bench_out"
{
	printf '{"date":"%s","commit":"%s","ns_per_op":{' \
		"$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	echo "$bench_out" | awk '
		/^Benchmark(Covering|Minimize)WorstCase\// {
			name = $1
			sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
			if (n++) printf(",")
			printf("\"%s\":%d", name, $3)
		}
		END { print "}}" }'
} >>BENCH_covering.json
echo "== verify: OK"
