#!/usr/bin/env bash
# Tier-1 verification for this repo, as documented in ROADMAP.md and
# DESIGN.md: build, static checks, documentation bar, and the full test
# suite under the race detector (mandatory because the synthesis engine
# fans out across a worker pool).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== checkdoc (package docs + frontend/gen exported-identifier docs)"
go run ./scripts/checkdoc
echo "== go test -race"
# 20m: the default 10m per-package budget is too tight for
# internal/search under the race detector once the loadtest package's
# exec'd daemon fleets compete for the same cores.
go test -race -timeout 20m ./...
echo "== docs: every examples/*.adl compiles and round-trips byte-identically"
go test -race -run 'TestCompileEmbeddedExamples' -count=1 ./internal/frontend
for adl in examples/*.adl; do
	go run ./cmd/asyncsynth compile -check "$adl"
done
echo "== fuzz smoke (seeded generator soundness, 5s)"
go test -run '^Fuzz' -count=1 ./internal/codec ./internal/core ./internal/gen
go test -run '^$' -fuzz '^FuzzGenSoundness$' -fuzztime 5s ./internal/gen
echo "== memo equivalence (cached pipeline bit-identical to uncached)"
go test -race -run 'TestMemoEquivalence' -count=1 .
echo "== cold-cache overhead guard (<5% on the all-miss path)"
go test -run 'TestColdCacheOverheadGuard' -count=1 .
echo "== server smoke test (asyncsynthd on a random port: submit DIFFEQ,"
echo "   poll to completion, served netlists bit-identical to direct run,"
echo "   graceful SIGTERM drain; the daemon's log is captured and replayed"
echo "   on failure)"
go test -race -run 'TestServerSmoke' -count=1 ./cmd/asyncsynthd
echo "== daemon shell smoke (kernel-assigned free port, never a fixed one;"
echo "   fails fast and prints the captured server log on any non-zero step)"
tmp=$(mktemp -d)
daemon_pid=
cleanup() {
	if [ -n "$daemon_pid" ]; then
		kill "$daemon_pid" 2>/dev/null || true
	fi
	rm -rf "$tmp"
}
trap cleanup EXIT
go build -o "$tmp/asyncsynthd" ./cmd/asyncsynthd
go build -o "$tmp/asyncsynth" ./cmd/asyncsynth
"$tmp/asyncsynthd" -addr 127.0.0.1:0 -concurrency 1 >"$tmp/daemon.log" 2>&1 &
daemon_pid=$!
fail_daemon() {
	echo "verify: daemon smoke failed: $1" >&2
	echo "--- captured server log ($tmp/daemon.log) ---" >&2
	cat "$tmp/daemon.log" >&2
	exit 1
}
base=
for _ in $(seq 1 100); do
	base=$(awk '/^listening on /{print $3; exit}' "$tmp/daemon.log")
	[ -n "$base" ] && break
	kill -0 "$daemon_pid" 2>/dev/null || fail_daemon "daemon exited before announcing its port"
	sleep 0.1
done
[ -n "$base" ] || fail_daemon "daemon never printed 'listening on' (10s)"
curl -fsS "$base/healthz" >/dev/null || fail_daemon "healthz"
"$tmp/asyncsynth" export diffeq >"$tmp/diffeq.json"
job=$(curl -fsS -X POST -H 'Content-Type: application/json' \
	--data-binary @"$tmp/diffeq.json" "$base/v1/jobs" |
	sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$job" ] || fail_daemon "submission returned no job ID"
state=
for _ in $(seq 1 600); do
	state=$(curl -fsS "$base/v1/jobs/$job" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)
	[ "$state" = done ] && break
	case "$state" in failed | cancelled) fail_daemon "job state $state" ;; esac
	sleep 0.1
done
[ "$state" = done ] || fail_daemon "job never finished (60s, last state '$state')"
curl -fsS "$base/v1/jobs/$job/result" >"$tmp/served.doc" || fail_daemon "result fetch"
"$tmp/asyncsynth" synthdoc diffeq >"$tmp/direct.doc"
cmp "$tmp/served.doc" "$tmp/direct.doc" || fail_daemon "served document differs from the direct run"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail_daemon "daemon exited non-zero on SIGTERM drain"
daemon_pid=
echo "== server cancellation (DELETE frees pool workers without failing"
echo "   the other in-flight jobs; asserted via obs pool gauges)"
go test -race -run 'TestCancelFreesWorkersWithoutFailingOthers|TestHTTPBackpressureAndCancel' -count=1 ./internal/service
echo "== covering solver cross-check (bb/pb/portfolio agree; portfolio"
echo "   bit-identical to sequential B&B, corpus + GCD worst fixture +"
echo "   full pipeline on all three benchmarks)"
go test -race -run 'TestSolverCrossCheck|TestPortfolioDeterministic|TestGCDWorstCaseFixture' -count=1 ./internal/logic
go test -race -run 'TestWorstCaseSpecSolvers' -count=1 ./internal/hfmin
go test -race -run 'TestPortfolioSolverEquivalence' -count=1 .
echo "== gate-level closure (synthesized logic verified on every registry"
echo "   benchmark, including the formerly-failing FIR and AR)"
go test -race -run 'TestGateClosureRegistry' -count=1 ./internal/bench
echo "== rewrite search smoke (DIFFEQ, bounded profile; appending to"
echo "   BENCH_search.json)"
search_out=$(go run ./cmd/asyncsynth search diffeq -waves 1 -budget 16)
echo "$search_out"
{
	printf '{"date":"%s","commit":"%s",' \
		"$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	echo "$search_out" | awk '
		/^  cost / { cost = $2 }
		/^best fixed ablation/ { gsub(/[()]/, ""); abl = $NF }
		END { printf("\"search_cost\":%s,\"ablation_cost\":%s}\n", cost, abl) }'
} >>BENCH_search.json
echo "== covering worst-case benchmarks (appending to BENCH_covering.json)"
bench_out=$(go test -run '^$' -bench 'BenchmarkCoveringWorstCase|BenchmarkMinimizeWorstCase' \
	-benchtime 20x ./internal/logic ./internal/hfmin)
echo "$bench_out"
{
	printf '{"date":"%s","commit":"%s","ns_per_op":{' \
		"$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	echo "$bench_out" | awk '
		/^Benchmark(Covering|Minimize)WorstCase\// {
			name = $1
			sub(/^Benchmark/, "", name); sub(/-[0-9]+$/, "", name)
			if (n++) printf(",")
			printf("\"%s\":%d", name, $3)
		}
		END { print "}}" }'
} >>BENCH_covering.json
echo "== incremental smoke (edit one FU of DIFFEQ, warm re-run must skip"
echo "   cached stages and stay byte-identical to a cold run; appending"
echo "   warm-vs-cold timings to BENCH_incremental.json)"
incr_out=$(go run ./scripts/incrbench -bench diffeq)
echo "$incr_out"
{
	printf '{"date":"%s","commit":"%s","smoke":%s}\n' \
		"$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
		"$incr_out"
} >>BENCH_incremental.json
echo "== incremental equivalence (engine warm runs bit-identical to cold"
echo "   pipeline runs on every benchmark + generated corpus)"
go test -race -run 'TestIncrementalBenchmarkEdits|TestIncrementalDiskWarmStart|TestHTTPPatchEndToEnd' -count=1 . ./internal/service
echo "== fleet smoke (3 asyncsynthd nodes: submit via one node, identical"
echo "   result from every node, kill the owning node mid-run, re-verify"
echo "   through a survivor)"
go test -race -run 'TestFleetSmoke' -count=1 ./internal/loadtest
echo "== fleet sustained-load sample (3 nodes via scripts/loadgen; appending"
echo "   p50/p95/p99 latency to BENCH_service.json)"
load_out=$(go run ./scripts/loadgen -nodes 3 -gen 0 -clients 4)
echo "$load_out"
{
	printf '{"date":"%s","commit":"%s",' \
		"$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
		"$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
	echo "$load_out" | awk '
		/^  "(jobs|done|p50_ms|p95_ms|p99_ms|max_queue_depth|remote_hits|cross_verified)":/ {
			gsub(/[ ,]/, "")
			if (n++) printf(",")
			printf("%s", $0)
		}
		END { print "}" }'
} >>BENCH_service.json
echo "== verify: OK"
