// Command incrbench is the incremental-synthesis smoke check run by
// scripts/verify.sh. It synthesizes a registry benchmark cold through
// the stage engine, applies a single-FU operation-swap delta, re-runs
// warm, and verifies the acceptance contract of the incremental engine:
//
//   - the warm output is byte-identical to a cold full pipeline run on
//     the edited design, and
//   - the warm run skipped at least one cached stage (hit counters > 0),
//     with at most one controller recomputed.
//
// It prints a one-line JSON record with the cold and warm wall times and
// the stage counters; verify.sh appends it to BENCH_incremental.json.
//
// Usage:
//
//	go run ./scripts/incrbench [-bench name]
//
// The exit status is the verdict: 0 when the contract holds, 1 otherwise.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/stage"
)

var benchName = flag.String("bench", "diffeq", "registry benchmark to edit")

func main() { os.Exit(run()) }

func run() int {
	flag.Parse()
	b, ok := bench.Lookup(*benchName)
	if !ok {
		fmt.Fprintf(os.Stderr, "incrbench: unknown benchmark %q\n", *benchName)
		return 1
	}
	g := b.Build()
	e := stage.New(nil)

	coldStart := time.Now()
	if _, err := runEngine(e, g); err != nil {
		fmt.Fprintf(os.Stderr, "incrbench: cold run: %v\n", err)
		return 1
	}
	cold := time.Since(coldStart)
	base := e.Stats()

	edited, fu, err := swapOneOp(g)
	if err != nil {
		fmt.Fprintf(os.Stderr, "incrbench: %v\n", err)
		return 1
	}
	warmStart := time.Now()
	warmDoc, err := runEngine(e, edited)
	if err != nil {
		fmt.Fprintf(os.Stderr, "incrbench: warm run: %v\n", err)
		return 1
	}
	warm := time.Since(warmStart)
	st := e.Stats()

	// Ground truth: a cold full pipeline run on the edited design.
	ref, err := runEngine(stage.New(nil), edited)
	if err != nil {
		fmt.Fprintf(os.Stderr, "incrbench: reference run: %v\n", err)
		return 1
	}

	hits := st.Hits() - base.Hits()
	report := map[string]any{
		"bench":            b.Name,
		"edited_fu":        fu,
		"cold_ms":          cold.Milliseconds(),
		"warm_ms":          warm.Milliseconds(),
		"stage_hits":       hits,
		"stage_misses":     st.Misses() - base.Misses(),
		"lt_recomputed":    st.LTMisses - base.LTMisses,
		"synth_recomputed": st.SynthMisses - base.SynthMisses,
	}
	out, _ := json.Marshal(report)
	fmt.Println(string(out))

	ok = true
	if !bytes.Equal(warmDoc, ref) {
		fmt.Fprintln(os.Stderr, "incrbench: FAIL: warm output differs from a cold run on the edited design")
		ok = false
	}
	if hits == 0 {
		fmt.Fprintln(os.Stderr, "incrbench: FAIL: the warm run skipped no stages")
		ok = false
	}
	if st.SynthMisses-base.SynthMisses > 1 || st.LTMisses-base.LTMisses > 1 {
		fmt.Fprintln(os.Stderr, "incrbench: FAIL: a single-FU edit recomputed more than one controller")
		ok = false
	}
	if !ok {
		return 1
	}
	return 0
}

// runEngine synthesizes g through e and returns the encoded document.
func runEngine(e *stage.Engine, g *cdfg.Graph) ([]byte, error) {
	s, results, err := e.Run(context.Background(), g, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return codec.EncodeSynthesis(s, results)
}

// swapOneOp applies a delta flipping the first FU-bound addition or
// subtraction, returning the edited graph and the touched unit.
func swapOneOp(g *cdfg.Graph) (*cdfg.Graph, string, error) {
	for _, n := range g.Nodes() {
		if n.Kind != cdfg.KindOp || n.FU == "" || len(n.Stmts) != 1 {
			continue
		}
		s := n.Stmts[0]
		if s.Op != cdfg.OpAdd && s.Op != cdfg.OpSub {
			continue
		}
		op := "-"
		if s.Op == cdfg.OpSub {
			op = "+"
		}
		id := int(n.ID)
		d := &codec.DeltaDoc{
			Version: codec.Version,
			Kind:    codec.KindDelta,
			Ops: []codec.DeltaOp{{
				Op:    codec.OpRetypeNode,
				ID:    &id,
				Stmts: []codec.StmtDoc{{Dst: s.Dst, Op: op, Src1: s.Src1, Src2: s.Src2}},
			}},
		}
		if dirty := stage.Classify(g, d); dirty.Global {
			return nil, "", fmt.Errorf("op swap on node %d classified global", n.ID)
		}
		edited, err := codec.ApplyDelta(g, d)
		if err != nil {
			return nil, "", fmt.Errorf("applying delta: %w", err)
		}
		return edited, n.FU, nil
	}
	return nil, "", fmt.Errorf("no swappable FU-bound op in the design")
}
