// Package repro reproduces "Transformations for the Synthesis and
// Optimization of Asynchronous Distributed Control" (Theobald & Nowick,
// DAC 2001): a transformation-based flow that turns a scheduled,
// resource-bound control-data flow graph into an optimized set of
// interacting asynchronous burst-mode controllers.
//
// The library lives under internal/: cdfg (graphs), transform (GT1–GT5),
// extract (controller extraction), local (LT1–LT5), synth + hfmin + logic
// (gate-level hazard-free synthesis), sim (token- and controller-level
// simulation), timing (interval analysis), core (the assembled flow),
// diffeq, gcd and fir (benchmarks), explore (design-space scripts),
// par (the bounded worker pool every fan-out runs on) and obs (structured
// tracing and per-stage metrics — the cmd/asyncsynth -trace/-metrics/
// -pprof flags).
//
// The root-level benchmarks (bench_test.go) regenerate every table and
// figure of the paper's evaluation; see EXPERIMENTS.md for the comparison
// against the published numbers.
package repro
