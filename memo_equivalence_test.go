// Equivalence tests for the hfmin memoization layer: the content-addressed
// cache (internal/memo) must be a pure performance transform. Every cache
// state — cold, warm in-memory, warm on-disk — must yield synthesis results
// bit-identical to the unmemoized pipeline, and the all-miss path must not
// slow the pipeline measurably.
package repro_test

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/memo"
	"repro/internal/synth"
)

// TestMemoEquivalence asserts that the memoized pipeline produces results
// bit-identical to the unmemoized one on every benchmark, across all three
// cache states, and that the warm passes actually hit.
func TestMemoEquivalence(t *testing.T) {
	for _, bench := range benches {
		bench := bench
		t.Run(bench.name, func(t *testing.T) {
			logicAt := func(min synth.Minimizer) map[string]*synth.Result {
				t.Helper()
				opt := core.DefaultOptions()
				opt.Minimizer = min
				s, err := core.Run(bench.build(), opt)
				if err != nil {
					t.Fatalf("core.Run: %v", err)
				}
				results, err := s.SynthesizeLogic()
				if err != nil {
					t.Fatalf("SynthesizeLogic: %v", err)
				}
				return results
			}
			want := logicAt(nil)

			dir := t.TempDir()
			cold, err := memo.New(dir)
			if err != nil {
				t.Fatal(err)
			}
			compare := func(state string, got map[string]*synth.Result) {
				t.Helper()
				if !reflect.DeepEqual(got, want) {
					for fu, w := range want {
						if !reflect.DeepEqual(got[fu], w) {
							t.Errorf("%s cache: %s synthesis result differs from unmemoized", state, fu)
						}
					}
				}
			}
			compare("cold", logicAt(cold))
			if st := cold.Stats(); st.Misses == 0 {
				t.Error("cold pass recorded no misses; the cache was never consulted")
			}

			compare("warm", logicAt(cold))
			if st := cold.Stats(); st.Hits == 0 {
				t.Error("warm pass recorded no hits")
			}

			fresh, err := memo.New(dir)
			if err != nil {
				t.Fatal(err)
			}
			compare("disk", logicAt(fresh))
			if st := fresh.Stats(); st.DiskHits == 0 {
				t.Error("disk pass recorded no disk hits")
			}
			if st := fresh.Stats(); st.Misses != 0 {
				t.Errorf("disk pass recorded %d misses; the persisted cache is incomplete", st.Misses)
			}
		})
	}
}

// TestColdCacheOverheadGuard bounds the cost of an all-miss cache: hashing
// every spec and consulting an empty in-memory map must add less than 5% to
// the pipeline (the minimizer dominates so thoroughly that key computation
// is noise). Mirrors the obs disabled-overhead guard: best of several tries
// against run-to-run variance.
func TestColdCacheOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive guard skipped in -short")
	}
	pipeline := func(min synth.Minimizer) {
		opt := core.DefaultOptions()
		opt.Minimizer = min
		s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), opt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.SynthesizeLogic(); err != nil {
			t.Fatal(err)
		}
	}
	const tries = 5
	best := 1e9
	for i := 0; i < tries; i++ {
		base := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				pipeline(nil)
			}
		})
		memoized := testing.Benchmark(func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				cache, err := memo.New("") // fresh per run: every lookup misses
				if err != nil {
					b.Fatal(err)
				}
				pipeline(cache)
			}
		})
		ratio := float64(memoized.NsPerOp()) / float64(base.NsPerOp())
		if ratio < best {
			best = ratio
		}
		if best < 1.05 {
			return
		}
	}
	t.Errorf("cold-cache overhead %.1f%% exceeds the 5%% budget", (best-1)*100)
}
