// Equivalence tests for the parallel synthesis engine: the worker-pool
// fan-out (internal/par) must be a pure performance transform, so the
// parallel pipeline, gate-level synthesis and exploration sweep are
// asserted bit-identical to their sequential counterparts on every
// benchmark.
package repro_test

import (
	"reflect"
	"testing"

	"repro/internal/cdfg"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/explore"
	"repro/internal/fir"
	"repro/internal/gcd"
	"repro/internal/logic"
)

// benches enumerates the three benchmarks; synth marks the ones whose
// gate-level synthesis is cheap enough to compare cover-for-cover.
var benches = []struct {
	name  string
	build func() *cdfg.Graph
	synth bool
}{
	{"diffeq", func() *cdfg.Graph { return diffeq.Build(diffeq.DefaultParams()) }, true},
	{"gcd", func() *cdfg.Graph { return gcd.Build(123, 45) }, true},
	{"fir", func() *cdfg.Graph { return fir.Build(fir.DefaultParams()) }, false},
}

func runAt(t *testing.T, g *cdfg.Graph, workers int) *core.Synthesis {
	t.Helper()
	opt := core.DefaultOptions()
	opt.Parallelism = workers
	s, err := core.Run(g, opt)
	if err != nil {
		t.Fatalf("core.Run (j=%d): %v", workers, err)
	}
	return s
}

// TestParallelRunEquivalence asserts that core.Run with a worker pool
// produces the same machines, channel plan, state counts and synthesized
// covers as the sequential path.
func TestParallelRunEquivalence(t *testing.T) {
	for _, bench := range benches {
		bench := bench
		t.Run(bench.name, func(t *testing.T) {
			seq := runAt(t, bench.build(), 1)
			for _, j := range []int{0, 2, 4} {
				par := runAt(t, bench.build(), j)
				if got, want := par.Channels(), seq.Channels(); got != want {
					t.Errorf("j=%d: channels = %d, want %d", j, got, want)
				}
				if got, want := par.StateCounts(), seq.StateCounts(); !reflect.DeepEqual(got, want) {
					t.Errorf("j=%d: state counts = %v, want %v", j, got, want)
				}
				if got, want := par.FUs(), seq.FUs(); !reflect.DeepEqual(got, want) {
					t.Fatalf("j=%d: FUs = %v, want %v", j, got, want)
				}
				for _, fu := range seq.FUs() {
					if got, want := par.Machines[fu].String(), seq.Machines[fu].String(); got != want {
						t.Errorf("j=%d: machine %s differs from sequential:\n got: %s\nwant: %s", j, fu, got, want)
					}
				}
				if !reflect.DeepEqual(par.Shared, seq.Shared) {
					t.Errorf("j=%d: shared-wire maps differ: %v vs %v", j, par.Shared, seq.Shared)
				}
			}
			if !bench.synth {
				return
			}
			seqLogic, err := seq.SynthesizeLogic()
			if err != nil {
				t.Fatalf("sequential SynthesizeLogic: %v", err)
			}
			par4 := runAt(t, bench.build(), 4)
			parLogic, err := par4.SynthesizeLogic()
			if err != nil {
				t.Fatalf("parallel SynthesizeLogic: %v", err)
			}
			for _, fu := range seq.FUs() {
				sr, pr := seqLogic[fu], parLogic[fu]
				if sr.Products != pr.Products || sr.Literals != pr.Literals {
					t.Errorf("%s: products/literals = %d/%d, want %d/%d",
						fu, pr.Products, pr.Literals, sr.Products, sr.Literals)
				}
				if !reflect.DeepEqual(sr, pr) {
					t.Errorf("%s: parallel synthesis result differs from sequential (covers/encoding)", fu)
				}
			}
		})
	}
}

// TestPortfolioSolverEquivalence asserts the racing covering portfolio is a
// pure performance transform: the full pipeline with -solver=portfolio
// synthesizes bit-identical gate-level results to the sequential
// branch-and-bound default on every benchmark, at sequential and parallel
// worker counts.
func TestPortfolioSolverEquivalence(t *testing.T) {
	runWith := func(t *testing.T, g *cdfg.Graph, solver logic.Solver, workers int) map[string]any {
		t.Helper()
		opt := core.DefaultOptions()
		opt.Solver = solver
		opt.Parallelism = workers
		s, err := core.Run(g, opt)
		if err != nil {
			t.Fatalf("core.Run (%v, j=%d): %v", solver, workers, err)
		}
		results, err := s.SynthesizeLogic()
		if err != nil {
			t.Fatalf("SynthesizeLogic (%v, j=%d): %v", solver, workers, err)
		}
		out := make(map[string]any, len(results))
		for fu, r := range results {
			out[fu] = r
		}
		return out
	}
	for _, bench := range benches {
		bench := bench
		t.Run(bench.name, func(t *testing.T) {
			want := runWith(t, bench.build(), logic.SolverBB, 1)
			for _, j := range []int{1, 4} {
				got := runWith(t, bench.build(), logic.SolverPortfolio, j)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("j=%d: portfolio synthesis differs from sequential B&B", j)
				}
			}
		})
	}
}

// TestSweepParallelEquivalence asserts SweepParallel returns the exact
// Score slice of the sequential Sweep, element for element.
func TestSweepParallelEquivalence(t *testing.T) {
	for _, bench := range benches {
		bench := bench
		t.Run(bench.name, func(t *testing.T) {
			g := bench.build()
			variants := explore.AllVariants()
			seq := explore.Sweep(g.Clone(), variants)
			for _, j := range []int{0, 1, 4} {
				par := explore.SweepParallel(g.Clone(), variants, j)
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("j=%d: parallel sweep scores differ from sequential\n got: %+v\nwant: %+v", j, par, seq)
				}
			}
		})
	}
}
