// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index). Figures are
// regenerated as reported metrics:
//
//	go test -bench=. -benchmem
//
// The metric names mirror the paper's columns (channels, states,
// transitions, products, literals); EXPERIMENTS.md records the side-by-side
// comparison with the published numbers.
package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/diffeq"
	"repro/internal/explore"
	"repro/internal/extract"
	"repro/internal/fir"
	"repro/internal/gcd"
	"repro/internal/local"
	"repro/internal/memo"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/synth"
	"repro/internal/timing"
	"repro/internal/transform"
)

// --- Figure 1: the unoptimized CDFG (constraint-arc generation) ----------

func BenchmarkFig1CDFGConstruction(b *testing.B) {
	var g *cdfg.Graph
	for i := 0; i < b.N; i++ {
		g = diffeq.Build(diffeq.DefaultParams())
	}
	b.ReportMetric(float64(len(g.Nodes())), "nodes")
	b.ReportMetric(float64(len(g.Arcs())), "arcs")
	b.ReportMetric(float64(len(g.InterFUArcs(false))), "channels")
}

// --- Figure 3: GT1 loop parallelism + GT2 dominated-constraint removal ---

func BenchmarkFig3LoopParallelism(b *testing.B) {
	var backward int
	for i := 0; i < b.N; i++ {
		g := diffeq.Build(diffeq.DefaultParams())
		if _, err := transform.LoopParallelism(g); err != nil {
			b.Fatal(err)
		}
		if _, err := transform.RemoveDominated(g); err != nil {
			b.Fatal(err)
		}
		backward = 0
		for _, a := range g.Arcs() {
			if a.Kind == cdfg.ArcBackward {
				backward++
			}
		}
	}
	b.ReportMetric(float64(backward), "backward-arcs") // paper: 2 (arcs 8 and 9)
}

// --- Figure 4: GT3 relative timing + GT4 assignment merging --------------

func BenchmarkFig4RelativeTimingAndMerge(b *testing.B) {
	var nodes int
	for i := 0; i < b.N; i++ {
		g := diffeq.Build(diffeq.DefaultParams())
		mustGT(b, g, transform.LoopParallelism)
		mustGT(b, g, transform.RemoveDominated)
		if _, err := transform.RelativeTiming(g, timing.DefaultModel(), 3); err != nil {
			b.Fatal(err)
		}
		mustGT(b, g, transform.MergeAssignments)
		nodes = len(g.Nodes())
	}
	b.ReportMetric(float64(nodes), "nodes") // one fewer after the Y/X1 merge
}

func mustGT(b *testing.B, g *cdfg.Graph, f func(*cdfg.Graph) (*transform.Report, error)) {
	b.Helper()
	if _, err := f(g); err != nil {
		b.Fatal(err)
	}
}

// --- Figure 5: GT5 channel elimination (10 → 5, two multi-way) -----------

func BenchmarkFig5ChannelElimination(b *testing.B) {
	var before, after, multiway int
	for i := 0; i < b.N; i++ {
		g := diffeq.Build(diffeq.DefaultParams())
		opts := transform.DefaultOptions()
		opts.SkipGT5 = true
		plan, _, err := transform.OptimizeGT(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		before = plan.Count()
		plan.Eliminate()
		after = plan.Count()
		multiway = plan.MultiwayCount()
	}
	b.ReportMetric(float64(before), "channels-before") // paper: 10
	b.ReportMetric(float64(after), "channels-after")   // paper: 5
	b.ReportMetric(float64(multiway), "multiway")      // paper: 2
}

// --- Figures 10/11: burst-mode controller extraction ---------------------

func BenchmarkFig10Extraction(b *testing.B) {
	g := diffeq.Build(diffeq.DefaultParams())
	plan, _, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	var res *extract.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = extract.Extract(g, plan, extract.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	total := 0
	for _, m := range res.Machines {
		total += m.NumStates()
	}
	b.ReportMetric(float64(total), "total-states")
}

// --- Figure 12: state machine comparison ---------------------------------

var fig12Once sync.Once

func BenchmarkFig12StateMachines(b *testing.B) {
	levels := []core.Level{core.Unoptimized, core.OptimizedGT, core.OptimizedGTLT}
	var rows []core.Row
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, level := range levels {
			opt := core.DefaultOptions()
			opt.Level = level
			s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), opt)
			if err != nil {
				b.Fatal(err)
			}
			rows = append(rows, s.Fig12Row())
		}
	}
	fig12Once.Do(func() {
		fmt.Printf("\n--- Figure 12 (this implementation) ---\n%s", core.FormatFig12(diffeq.FUs, rows))
		var paper []core.Row
		for _, r := range diffeq.PaperFig12 {
			paper = append(paper, core.Row{Name: r.Name, Channels: r.Channels, States: r.States, Transitions: r.Transitions})
		}
		fmt.Printf("--- Figure 12 (paper) ---\n%s\n", core.FormatFig12(diffeq.FUs, paper))
	})
	for i, level := range levels {
		st, tr := 0, 0
		for _, fu := range diffeq.FUs {
			st += rows[i].States[fu]
			tr += rows[i].Transitions[fu]
		}
		b.ReportMetric(float64(rows[i].Channels), fmt.Sprintf("channels-%s", level))
		b.ReportMetric(float64(st), fmt.Sprintf("states-%s", level))
		b.ReportMetric(float64(tr), fmt.Sprintf("transitions-%s", level))
	}
}

// --- Figure 13: gate-level comparison -------------------------------------

var fig13Once sync.Once

func BenchmarkFig13GateLevel(b *testing.B) {
	var results map[string]*synth.Result
	for i := 0; i < b.N; i++ {
		s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		results, err = s.SynthesizeLogic()
		if err != nil {
			b.Fatal(err)
		}
	}
	fig13Once.Do(func() {
		fmt.Printf("\n--- Figure 13 (this implementation) ---\n%s", core.FormatFig13(diffeq.FUs, results))
		yp, yl := diffeq.GateTotals(diffeq.PaperFig13Yun)
		op, ol := diffeq.GateTotals(diffeq.PaperFig13Ours)
		fmt.Printf("--- Figure 13 (published) ---\nYun (manual) total: %d products, %d literals\npaper's flow total: %d products, %d literals\n\n", yp, yl, op, ol)
	})
	totP, totL := 0, 0
	for _, r := range results {
		totP += r.Products
		totL += r.Literals
	}
	b.ReportMetric(float64(totP), "products")
	b.ReportMetric(float64(totL), "literals")
}

// --- Loop-parallelism performance series (GT1's effect, token level) -----

func BenchmarkLoopParallelismSpeedup(b *testing.B) {
	delays := func() sim.Delays {
		return sim.PerFUDelays(map[string]float64{
			"MUL1": 40, "MUL2": 40, "ALU1": 10, "ALU2": 10,
		}, 2, 1)
	}
	var base, opt float64
	for i := 0; i < b.N; i++ {
		g := diffeq.Build(diffeq.DefaultParams())
		res, err := sim.NewTokenSim(g, delays()).Run()
		if err != nil {
			b.Fatal(err)
		}
		base = res.FinishTime
		g2 := diffeq.Build(diffeq.DefaultParams())
		mustGT(b, g2, transform.LoopParallelism)
		mustGT(b, g2, transform.RemoveDominated)
		res2, err := sim.NewTokenSim(g2, delays()).Run()
		if err != nil {
			b.Fatal(err)
		}
		opt = res2.FinishTime
	}
	b.ReportMetric(base, "makespan-sync")
	b.ReportMetric(opt, "makespan-overlapped")
	b.ReportMetric(base/opt, "speedup")
}

// --- Controller-level simulation throughput -------------------------------

func benchSimulate(b *testing.B, level core.Level) {
	opt := core.DefaultOptions()
	opt.Level = level
	s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), opt)
	if err != nil {
		b.Fatal(err)
	}
	var events int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Simulate(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events")
}

func BenchmarkSimulateUnoptimized(b *testing.B) { benchSimulate(b, core.Unoptimized) }
func BenchmarkSimulateGT(b *testing.B)          { benchSimulate(b, core.OptimizedGT) }
func BenchmarkSimulateGTLT(b *testing.B)        { benchSimulate(b, core.OptimizedGTLT) }

// --- Ablations: each transform's contribution to the channel count -------

func benchAblation(b *testing.B, mutate func(*transform.Options)) {
	var channels int
	for i := 0; i < b.N; i++ {
		g := diffeq.Build(diffeq.DefaultParams())
		opts := transform.DefaultOptions()
		mutate(&opts)
		plan, _, err := transform.OptimizeGT(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		channels = plan.Count()
	}
	b.ReportMetric(float64(channels), "channels")
}

func BenchmarkAblationNoGT1(b *testing.B) {
	benchAblation(b, func(o *transform.Options) { o.SkipGT1 = true })
}
func BenchmarkAblationNoGT2(b *testing.B) {
	benchAblation(b, func(o *transform.Options) { o.SkipGT2 = true })
}
func BenchmarkAblationNoGT3(b *testing.B) {
	benchAblation(b, func(o *transform.Options) { o.SkipGT3 = true })
}
func BenchmarkAblationNoGT4(b *testing.B) {
	benchAblation(b, func(o *transform.Options) { o.SkipGT4 = true })
}
func BenchmarkAblationNoGT5(b *testing.B) {
	benchAblation(b, func(o *transform.Options) { o.SkipGT5 = true })
}
func BenchmarkAblationAllGT(b *testing.B) { benchAblation(b, func(o *transform.Options) {}) }

// --- Hazard-free minimization vs plain two-level (the hfmin substrate) ---

func BenchmarkHazardFreeMinimization(b *testing.B) {
	g := diffeq.Build(diffeq.DefaultParams())
	plan, _, err := transform.OptimizeGT(g, transform.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	ex, err := extract.Extract(g, plan, extract.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := ex.Machines[diffeq.MUL2]
	if _, err := local.Optimize(m); err != nil {
		b.Fatal(err)
	}
	var products int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := synth.Synthesize(m)
		if err != nil {
			b.Fatal(err)
		}
		products = r.Products
	}
	b.ReportMetric(float64(products), "products")
}

// --- Second benchmark: GCD end to end -------------------------------------

func BenchmarkGCDFullFlow(b *testing.B) {
	var channels, states int
	for i := 0; i < b.N; i++ {
		s, err := core.Run(gcd.Build(123, 45), core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		channels = s.Channels()
		states = 0
		for _, m := range s.Machines {
			states += m.NumStates()
		}
	}
	b.ReportMetric(float64(channels), "channels")
	b.ReportMetric(float64(states), "states")
}

// --- Third benchmark: FIR filter end to end --------------------------------

func BenchmarkFIRFullFlow(b *testing.B) {
	var channels int
	for i := 0; i < b.N; i++ {
		s, err := core.Run(fir.Build(fir.DefaultParams()), core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		channels = s.Channels()
	}
	b.ReportMetric(float64(channels), "channels")
}

// --- Design-space exploration sweep ---------------------------------------

func BenchmarkExploreSweep(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		g := diffeq.Build(diffeq.DefaultParams())
		scores := explore.Sweep(g, explore.AllVariants())
		n = len(explore.Pareto(scores))
	}
	b.ReportMetric(float64(n), "pareto-points")
}

// --- Gate-level closure: the synthesized logic as the controllers --------

func BenchmarkGateLevelSimulation(b *testing.B) {
	s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		b.Fatal(err)
	}
	var events int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.GateSimulate(results, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events), "events")
}

// --- Parallel synthesis engine: worker-pool fan-out ------------------------
//
// The flow is parallel at three levels (per-controller LT + synthesis,
// per-output minimization, per-variant exploration); these benchmarks
// measure the wall-clock effect of the internal/par worker pool and report
// it as a `speedup` metric against the sequential (j=1) path. On a
// single-core machine the speedup is ~1 by construction; the fan-out pays
// off on multi-core.

// pipelineOnce runs the full DIFFEQ pipeline (GT → extract → LT → gate
// synthesis) under the given worker-pool bound.
func pipelineOnce(b *testing.B, workers int) {
	b.Helper()
	opt := core.DefaultOptions()
	opt.Parallelism = workers
	s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), opt)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.SynthesizeLogic(); err != nil {
		b.Fatal(err)
	}
}

// seqBaseline measures a sequential per-run wall time once, for the
// speedup metrics of the parallel benchmarks.
func seqBaseline(b *testing.B, once *sync.Once, ns *float64, run func()) float64 {
	b.Helper()
	once.Do(func() {
		const reps = 3
		run() // warm-up
		start := time.Now()
		for i := 0; i < reps; i++ {
			run()
		}
		*ns = float64(time.Since(start).Nanoseconds()) / reps
	})
	return *ns
}

var (
	pipelineBaseOnce sync.Once
	pipelineBaseNs   float64
)

func BenchmarkPipelineParallel(b *testing.B) {
	base := seqBaseline(b, &pipelineBaseOnce, &pipelineBaseNs, func() { pipelineOnce(b, 1) })
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pipelineOnce(b, j)
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(base/perOp, "speedup")
		})
	}
}

var (
	sweepBaseOnce sync.Once
	sweepBaseNs   float64
)

func BenchmarkExploreSweepParallel(b *testing.B) {
	g := diffeq.Build(diffeq.DefaultParams())
	variants := explore.AllVariants()
	base := seqBaseline(b, &sweepBaseOnce, &sweepBaseNs, func() { explore.Sweep(g.Clone(), variants) })
	for _, j := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			var n int
			for i := 0; i < b.N; i++ {
				scores := explore.SweepParallel(g.Clone(), variants, j)
				n = len(explore.Pareto(scores))
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(base/perOp, "speedup")
			b.ReportMetric(float64(n), "pareto-points")
		})
	}
}

// --- Delay-ratio series: loop-parallelism speedup vs multiplier latency ---
//
// The paper motivates loop parallelism by slow functional units; this
// series sweeps the multiplier/ALU latency ratio and reports the
// overlapped-vs-synchronized makespan ratio at each point (the series a
// performance figure would plot).
func BenchmarkSpeedupVsMulLatency(b *testing.B) {
	ratios := []float64{1, 2, 4, 8}
	speedups := make([]float64, len(ratios))
	for i := 0; i < b.N; i++ {
		for ri, ratio := range ratios {
			delays := func() sim.Delays {
				return sim.PerFUDelays(map[string]float64{
					"MUL1": 10 * ratio, "MUL2": 10 * ratio, "ALU1": 10, "ALU2": 10,
				}, 2, 1)
			}
			g := diffeq.Build(diffeq.DefaultParams())
			base, err := sim.NewTokenSim(g, delays()).Run()
			if err != nil {
				b.Fatal(err)
			}
			g2 := diffeq.Build(diffeq.DefaultParams())
			mustGT(b, g2, transform.LoopParallelism)
			mustGT(b, g2, transform.RemoveDominated)
			opt, err := sim.NewTokenSim(g2, delays()).Run()
			if err != nil {
				b.Fatal(err)
			}
			speedups[ri] = base.FinishTime / opt.FinishTime
		}
	}
	for ri, ratio := range ratios {
		b.ReportMetric(speedups[ri], fmt.Sprintf("speedup-mul%gx", ratio))
	}
}

// --- Controller-level completion time per optimization level --------------
//
// The paper's transforms target performance as well as area; this bench
// reports the controller-level completion time of the DIFFEQ run at each
// level under one delay model.
func BenchmarkMakespanByLevel(b *testing.B) {
	times := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, level := range []core.Level{core.Unoptimized, core.OptimizedGT, core.OptimizedGTLT} {
			opt := core.DefaultOptions()
			opt.Level = level
			s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), opt)
			if err != nil {
				b.Fatal(err)
			}
			res, err := s.Simulate(1)
			if err != nil {
				b.Fatal(err)
			}
			times[level.String()] = res.FinishTime
		}
	}
	for name, tm := range times {
		b.ReportMetric(tm, "t-"+name)
	}
}

// --- Memoized synthesis: the hfmin cache's effect on repeat runs ----------
//
// The content-addressed cache (internal/memo) amortizes hazard-free
// minimization across runs and variants. This benchmark reports the
// speedup of a warm-cache pipeline over the uncached baseline; the
// cold-cache penalty is bounded separately by TestColdCacheOverheadGuard.

var (
	memoBaseOnce sync.Once
	memoBaseNs   float64
)

func BenchmarkPipelineMemoized(b *testing.B) {
	run := func(min synth.Minimizer) {
		opt := core.DefaultOptions()
		opt.Minimizer = min
		s, err := core.Run(diffeq.Build(diffeq.DefaultParams()), opt)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.SynthesizeLogic(); err != nil {
			b.Fatal(err)
		}
	}
	base := seqBaseline(b, &memoBaseOnce, &memoBaseNs, func() { run(nil) })
	cache, err := memo.New("")
	if err != nil {
		b.Fatal(err)
	}
	run(cache) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(cache)
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(base/perOp, "speedup")
	st := cache.Stats()
	b.ReportMetric(float64(st.Hits), "hits")
	b.ReportMetric(float64(st.Misses), "misses")
}

// BenchmarkExploreSweepSynthMemoized measures the gate-level exploration
// sweep (every variant synthesized, as the CLI's explore command runs it)
// with a shared cache versus without.
var (
	sweepSynthBaseOnce sync.Once
	sweepSynthBaseNs   float64
)

func BenchmarkExploreSweepSynthMemoized(b *testing.B) {
	g := diffeq.Build(diffeq.DefaultParams())
	variants := explore.AllVariants()
	sweep := func(min synth.Minimizer) {
		explore.SweepWith(g.Clone(), variants, explore.Options{Workers: 1, Synthesize: true, Minimizer: min})
	}
	base := seqBaseline(b, &sweepSynthBaseOnce, &sweepSynthBaseNs, func() { sweep(nil) })
	cache, err := memo.New("")
	if err != nil {
		b.Fatal(err)
	}
	sweep(cache) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep(cache)
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(base/perOp, "speedup")
}

// --- Synthesis-as-a-service: job-server throughput -------------------------
//
// BenchmarkServerThroughput drives an in-process asyncsynthd job server
// (internal/service.Manager behind its real HTTP handler) with batches of
// concurrent DIFFEQ jobs over a warm shared memo cache — the steady-state
// serving scenario. Reported metrics: completed jobs per second and the
// memo hit count accumulated across the batch.
func BenchmarkServerThroughput(b *testing.B) {
	const jobs = 8
	cache, err := memo.New("")
	if err != nil {
		b.Fatal(err)
	}
	mgr := service.New(service.Config{
		QueueDepth:  jobs,
		Concurrency: 4,
		Minimizer:   cache,
	})
	defer mgr.Close()
	srv := httptest.NewServer(mgr.Handler())
	defer srv.Close()
	graph, err := codec.EncodeGraph(diffeq.Build(diffeq.DefaultParams()))
	if err != nil {
		b.Fatal(err)
	}

	submit := func() string {
		b.Helper()
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(graph))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			ID string `json:"id"`
		}
		if resp.StatusCode != http.StatusAccepted {
			body, _ := io.ReadAll(resp.Body)
			b.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		return st.ID
	}
	wait := func(id string) {
		b.Helper()
		job, err := mgr.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		<-job.Done()
		if s := job.State(); s != service.StateDone {
			b.Fatalf("job %s ended %v: %v", id, s, job.Err())
		}
	}
	wait(submit()) // warm the memo cache before timing

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ids := make([]string, jobs)
		for j := range ids {
			ids[j] = submit()
		}
		for _, id := range ids {
			wait(id)
		}
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N*jobs)/elapsed, "jobs/s")
	}
	b.ReportMetric(float64(cache.Stats().Hits), "memo-hits")
}
