// Equivalence tests for the incremental stage engine: warm re-runs after
// CDFG delta edits must be a pure performance transform. Every patched
// design — each registry benchmark under a hand-written single-FU edit,
// and generated designs under randomized edit sequences — must synthesize
// to a document bit-identical to a cold full pipeline run, while the
// engine demonstrably skips the stages the edit did not reach.
package repro_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/cdfg"
	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/memo"
	"repro/internal/stage"
)

// tryColdSynthesis runs the plain (non-incremental) pipeline and returns
// the encoded synthesis document, the byte-level ground truth.
func tryColdSynthesis(g *cdfg.Graph) ([]byte, error) {
	s, err := core.Run(g.Clone(), core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	results, err := s.SynthesizeLogic()
	if err != nil {
		return nil, err
	}
	return codec.EncodeSynthesis(s, results)
}

func coldSynthesis(t *testing.T, g *cdfg.Graph) []byte {
	t.Helper()
	doc, err := tryColdSynthesis(g)
	if err != nil {
		t.Fatalf("cold pipeline run: %v", err)
	}
	return doc
}

// engineSynthesis runs the same pipeline through the stage engine.
func engineSynthesis(t *testing.T, e *stage.Engine, g *cdfg.Graph) []byte {
	t.Helper()
	s, results, err := e.Run(context.Background(), g, core.DefaultOptions())
	if err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	doc, err := codec.EncodeSynthesis(s, results)
	if err != nil {
		t.Fatalf("EncodeSynthesis: %v", err)
	}
	return doc
}

// swappable collects FU-bound single-statement add/sub nodes, the ops a
// shape-preserving retype delta can flip.
func swappable(g *cdfg.Graph) []*cdfg.Node {
	var out []*cdfg.Node
	for _, n := range g.Nodes() {
		if n.Kind == cdfg.KindOp && n.FU != "" && len(n.Stmts) == 1 &&
			(n.Stmts[0].Op == cdfg.OpAdd || n.Stmts[0].Op == cdfg.OpSub) {
			out = append(out, n)
		}
	}
	return out
}

// swapDelta builds the retype delta flipping n's statement between + and -.
func swapDelta(n *cdfg.Node) *codec.DeltaDoc {
	s := n.Stmts[0]
	op := "-"
	if s.Op == cdfg.OpSub {
		op = "+"
	}
	id := int(n.ID)
	return &codec.DeltaDoc{
		Version: codec.Version,
		Kind:    codec.KindDelta,
		Ops: []codec.DeltaOp{{
			Op:    codec.OpRetypeNode,
			ID:    &id,
			Stmts: []codec.StmtDoc{{Dst: s.Dst, Op: op, Src1: s.Src1, Src2: s.Src2}},
		}},
	}
}

// TestIncrementalBenchmarkEdits applies a hand-written single-FU op swap
// to every registry benchmark and asserts the warm incremental re-run is
// byte-identical to a cold pipeline run on the edited design, with the
// unedited controllers served from cache on multi-FU designs.
func TestIncrementalBenchmarkEdits(t *testing.T) {
	for _, b := range bench.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			g := b.Build()
			nodes := swappable(g)
			if len(nodes) == 0 {
				t.Skipf("%s has no swappable FU-bound op", b.Name)
			}

			e := stage.New(nil)
			if got, want := engineSynthesis(t, e, g), coldSynthesis(t, g); !bytes.Equal(got, want) {
				t.Fatal("cold engine run differs from the plain pipeline")
			}
			base := e.Stats()

			d := swapDelta(nodes[0])
			edited, err := codec.ApplyDelta(g, d)
			if err != nil {
				t.Fatalf("ApplyDelta: %v", err)
			}
			dirty := stage.Classify(g, d)
			if dirty.Global {
				t.Fatalf("op swap on %s classified global", nodes[0].FU)
			}

			got := engineSynthesis(t, e, edited)
			if want := coldSynthesis(t, edited); !bytes.Equal(got, want) {
				t.Error("incremental re-run differs from a cold run on the edited design")
			}
			st := e.Stats()
			// The edit reaches at most its own FU's local-transform and
			// synthesis stages; everything else must be a cache hit.
			if st.LTMisses > base.LTMisses+1 || st.SynthMisses > base.SynthMisses+1 {
				t.Errorf("edit invalidated more than one controller: %+v -> %+v", base, st)
			}
			if len(b.FUs) > 1 && st.SynthHits == base.SynthHits {
				t.Errorf("no controller served from cache on a %d-FU design: %+v -> %+v",
					len(b.FUs), base, st)
			}
		})
	}
}

// TestIncrementalGenCorpus drives randomized edit sequences over generated
// designs: after every edit in the sequence the warm engine output must be
// byte-identical to a cold pipeline run on the current design. Like the
// loadtest workload, seeds the extractor rejects are skipped — the corpus
// is the synthesizable subset of the generator's range.
func TestIncrementalGenCorpus(t *testing.T) {
	target, edits := 4, 3
	if testing.Short() {
		target, edits = 2, 2
	}
	exercised := 0
	for seed := int64(1); exercised < target && seed <= 200; seed++ {
		start := gen.Graph(seed)
		want, err := tryColdSynthesis(start)
		if err != nil {
			continue
		}
		if len(swappable(start)) == 0 {
			continue
		}
		exercised++
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			g := start
			e := stage.New(nil)
			if got := engineSynthesis(t, e, g); !bytes.Equal(got, want) {
				t.Fatal("cold engine run differs from the plain pipeline")
			}

			rng := rand.New(rand.NewSource(seed * 7919))
			for i := 0; i < edits; i++ {
				nodes := swappable(g)
				d := swapDelta(nodes[rng.Intn(len(nodes))])
				edited, err := codec.ApplyDelta(g, d)
				if err != nil {
					t.Fatalf("edit %d: ApplyDelta: %v", i, err)
				}
				if dirty := stage.Classify(g, d); dirty.Global {
					t.Fatalf("edit %d classified global", i)
				}
				got := engineSynthesis(t, e, edited)
				if want := coldSynthesis(t, edited); !bytes.Equal(got, want) {
					t.Fatalf("edit %d: incremental output differs from a cold run", i)
				}
				g = edited
			}
			if e.Stats().Hits() == 0 {
				t.Error("edit sequence never hit the stage cache")
			}
		})
	}
	if exercised < target {
		t.Fatalf("only %d of %d generated designs were synthesizable", exercised, target)
	}
}

// TestIncrementalDiskWarmStart covers the cross-process path a fleet node
// takes: a second engine over the same store directory re-runs an edited
// design entirely from disk-tier stage records plus the one recompute.
func TestIncrementalDiskWarmStart(t *testing.T) {
	dir := t.TempDir()
	b, ok := bench.Lookup("diffeq")
	if !ok {
		t.Fatal("diffeq missing from registry")
	}
	g := b.Build()
	store1, err := memo.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	engineSynthesis(t, stage.New(store1), g)

	nodes := swappable(g)
	edited, err := codec.ApplyDelta(g, swapDelta(nodes[0]))
	if err != nil {
		t.Fatal(err)
	}
	store2, err := memo.NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := stage.New(store2)
	got := engineSynthesis(t, e2, edited)
	if want := coldSynthesis(t, edited); !bytes.Equal(got, want) {
		t.Error("disk-warm incremental run differs from a cold run")
	}
	if st := e2.Stats(); st.SynthHits == 0 {
		t.Errorf("no controller filled from the disk tier: %+v", st)
	}
}
