package repro_test

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// BenchmarkRegistryFullFlow runs the complete flow (GT + extraction + LT)
// over every design in the benchmark registry — the hand-built classics
// and the ADL-compiled EWF/AR alike — so new registry entries are
// benchmarked without touching this file.
func BenchmarkRegistryFullFlow(b *testing.B) {
	for _, bm := range bench.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			var channels int
			for i := 0; i < b.N; i++ {
				s, err := core.Run(bm.Build(), core.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				channels = s.Channels()
			}
			b.ReportMetric(float64(channels), "channels")
		})
	}
}
